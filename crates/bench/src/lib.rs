//! Shared experiment drivers for the benchmark harness.
//!
//! One binary per table/figure of the paper regenerates its rows/series
//! (`cargo run --release -p nessa-bench --bin <table2|table3|table4|fig1|
//! fig2|fig4|fig5|fig6|speedup|movement|ablation>`); the Criterion benches
//! (`cargo bench`) cover the kernels. This library holds the pieces those
//! binaries share: the scaled dataset builder, the standard model shape,
//! and printing helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nessa_core::{run_policy, Policy, RunReport};
use nessa_data::{Dataset, DatasetSpec};
use nessa_nn::models::{mlp, Network};
use nessa_tensor::rng::Rng64;

/// Epochs used by the scaled accuracy experiments (the paper's 200-epoch
/// schedule is rescaled proportionally by `MultiStepLr::paper_schedule`).
pub const EPOCHS: usize = 40;

/// Batch size for the scaled experiments (paper: 128; scaled pools are
/// 25× smaller, so 32 keeps the same batches-per-epoch regime).
pub const BATCH: usize = 32;

/// Master seed for every experiment binary.
pub const SEED: u64 = 2023;

/// Generates the scaled synthetic stand-in for a Table-1 dataset.
pub fn scaled_dataset(spec: &DatasetSpec, seed: u64) -> (Dataset, Dataset) {
    spec.scaled_config(seed).generate()
}

/// The standard classifier for a scaled dataset: a two-layer MLP whose
/// hidden width grows with the class count (the scaled stand-in for the
/// paper's per-dataset ResNets; see DESIGN.md §2).
pub fn model_builder(dim: usize, classes: usize) -> impl Fn(&mut Rng64) -> Network {
    let hidden = if classes >= 100 { 160 } else { 96 };
    move |rng: &mut Rng64| mlp(&[dim, hidden, classes], rng)
}

/// Runs one policy on a scaled dataset with the standard settings.
pub fn run_scaled(
    policy: &Policy,
    train: &Dataset,
    test: &Dataset,
    epochs: usize,
    seed: u64,
) -> RunReport {
    let builder = model_builder(train.dim(), train.classes());
    run_policy(policy, train, test, epochs, BATCH, seed, &builder)
        // nessa-lint: allow(p1-panic) — experiment binaries want a loud
        // crash with the pipeline error, not a threaded Result.
        .expect("policy run failed")
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f32) -> String {
    format!("{:.2}", 100.0 * x)
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Renders a unicode sparkline of a series, scaled to its own min/max
/// (flat series render as a run of mid-level blocks).
pub fn sparkline(values: &[f32]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-9);
    values
        .iter()
        .map(|&v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_datasets_generate_for_all_specs() {
        for spec in DatasetSpec::table1() {
            let (train, test) = scaled_dataset(&spec, 1);
            assert!(!train.is_empty() && !test.is_empty(), "{}", spec.name);
            assert_eq!(train.classes(), spec.classes);
        }
    }

    #[test]
    fn quick_policy_run_works_at_tiny_scale() {
        let spec = DatasetSpec::by_name("CIFAR-10").unwrap();
        let mut cfg = spec.scaled_config(0);
        cfg.train = 150;
        cfg.test = 60;
        let (train, test) = cfg.generate();
        let report = run_scaled(&Policy::Goal, &train, &test, 3, 0);
        assert_eq!(report.epochs.len(), 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9017), "90.17");
    }

    #[test]
    fn sparkline_scales_and_handles_edges() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
        let flat = sparkline(&[0.7, 0.7]);
        assert_eq!(flat.chars().count(), 2);
    }
}
