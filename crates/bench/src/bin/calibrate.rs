//! Difficulty-calibration check: trains the Goal policy on each Table-1
//! stand-in exactly as table2 does and prints measured vs target full-data
//! accuracy, so the catalog's difficulty knobs can be tuned.
//!
//! Not part of the paper's evaluation; a maintenance tool.
//! Run with `cargo run --release -p nessa-bench --bin calibrate`.

use nessa_bench::{run_scaled, scaled_dataset, EPOCHS, SEED};
use nessa_core::Policy;
use nessa_data::DatasetSpec;

fn main() {
    for spec in DatasetSpec::table1() {
        let target = spec.paper.expect("table 2 row").all_data_acc;
        let (train, test) = scaled_dataset(&spec, SEED);
        let r = run_scaled(&Policy::Goal, &train, &test, EPOCHS, SEED);
        println!(
            "{:<14} goal {:>6.2} %  target {:>6.2} %  (delta {:+.2})",
            spec.name,
            100.0 * r.best_accuracy(),
            target,
            100.0 * r.best_accuracy() - target
        );
    }
}
