//! Design-choice ablations called out in DESIGN.md §5:
//!
//! 1. greedy maximizer variants (naive vs lazy vs stochastic) — selection
//!    quality and accuracy,
//! 2. partition chunk size vs selection quality,
//! 3. quantized (int8) vs full-precision feedback,
//! 4. random-baseline comparison at the Table-2 operating point.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin ablation`.
//! Pass `--json` to emit one JSON object per measured row (each tagged
//! with a `study` field) instead of the human-readable sections.

use nessa_bench::{rule, run_scaled, scaled_dataset, BATCH, EPOCHS, SEED};
use nessa_core::{NessaConfig, Policy};
use nessa_data::DatasetSpec;
use nessa_nn::models::mlp;
use nessa_quant::schemes::{relative_error, Granularity, Scheme, SchemeQuantized};
use nessa_select::craig::{select_per_class, CraigOptions};
use nessa_select::facility::{GreedyVariant, SimilarityMatrix};
use nessa_select::kmedoids;
use nessa_telemetry::json::JsonObject;
use nessa_tensor::rng::Rng64;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let spec = DatasetSpec::by_name("CIFAR-10").expect("catalog entry");
    let (train, test) = scaled_dataset(&spec, SEED);
    let fraction = 0.3f32;

    if !json {
        println!(
            "Ablation 1: greedy variant (NeSSA at {:.0} %)",
            100.0 * fraction
        );
        rule(60);
    }
    for (name, variant) in [
        ("naive", GreedyVariant::Naive),
        ("lazy", GreedyVariant::Lazy),
        ("stochastic", GreedyVariant::Stochastic { epsilon: 0.1 }),
    ] {
        let cfg = NessaConfig::new(fraction, EPOCHS).with_greedy(variant);
        let r = run_scaled(&Policy::Nessa(cfg), &train, &test, EPOCHS, SEED);
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("study", "greedy_variant")
                    .str_field("variant", name)
                    .f64_field("best_acc", (100.0 * r.best_accuracy()) as f64)
                    .finish()
            );
        } else {
            println!("  {:<12} best acc {:.2} %", name, 100.0 * r.best_accuracy());
        }
    }

    if !json {
        println!();
        println!("Ablation 2: partition chunk size vs k-medoid cost (class 0)");
        rule(60);
    }
    let members = train.indices_by_class()[0].clone();
    let feats = train.features().gather_rows(&members);
    let labels = vec![0usize; members.len()];
    let sim = SimilarityMatrix::from_features(&feats);
    for chunk in [16usize, 32, 64, 128, usize::MAX] {
        let mut rng = Rng64::new(SEED);
        let opts = CraigOptions {
            variant: GreedyVariant::Lazy,
            partition_chunk: (chunk != usize::MAX).then_some(chunk),
            threads: 1,
            metrics: None,
        };
        let sel = select_per_class(&feats, &labels, 1, fraction, &opts, &mut rng)
            .expect("selection failed");
        let cost = kmedoids::cost(&feats, &sel.indices);
        let obj = sim.objective(&sel.indices);
        let label = if chunk == usize::MAX {
            "whole-class".into()
        } else {
            format!("chunk {chunk}")
        };
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("study", "partition_chunk")
                    .u64_field("chunk", if chunk == usize::MAX { 0 } else { chunk as u64 })
                    .u64_field("subset_size", sel.len() as u64)
                    .f64_field("facility_objective", obj as f64)
                    .f64_field("kmedoid_cost", cost as f64)
                    .finish()
            );
        } else {
            println!(
                "  {:<12} |S|={:<4} facility objective {:>12.1}  k-medoid cost {:>10.1}",
                label,
                sel.len(),
                obj,
                cost
            );
        }
    }

    if !json {
        println!();
        println!("Ablation 3: feedback precision (int8 vs none)");
        rule(60);
    }
    for (name, feedback) in [("int8 feedback", true), ("no feedback", false)] {
        let cfg = NessaConfig::new(fraction, EPOCHS).with_feedback(feedback);
        let r = run_scaled(&Policy::Nessa(cfg), &train, &test, EPOCHS, SEED);
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("study", "feedback_precision")
                    .str_field("mode", name)
                    .f64_field("best_acc", (100.0 * r.best_accuracy()) as f64)
                    .finish()
            );
        } else {
            println!("  {:<14} best acc {:.2} %", name, 100.0 * r.best_accuracy());
        }
    }

    if !json {
        println!();
        println!("Ablation 3b: feedback quantization scheme (error vs payload)");
        rule(60);
    }
    let mut model_rng = Rng64::new(SEED);
    let mut net = mlp(&[train.dim(), 96, train.classes()], &mut model_rng);
    let weights = net.export_weights();
    for (name, scheme) in [
        (
            "int4/tensor",
            Scheme {
                bits: 4,
                granularity: Granularity::PerTensor,
            },
        ),
        ("int8/tensor", Scheme::int8()),
        (
            "int8/row",
            Scheme {
                bits: 8,
                granularity: Granularity::PerRow,
            },
        ),
        (
            "int16/tensor",
            Scheme {
                bits: 16,
                granularity: Granularity::PerTensor,
            },
        ),
    ] {
        let mut err_sum = 0.0f32;
        let mut bytes = 0usize;
        for w in &weights {
            err_sum += relative_error(w, scheme);
            bytes += SchemeQuantized::quantize(w, scheme).payload_bytes();
        }
        let f32_bytes: usize = weights.iter().map(|w| 4 * w.numel()).sum();
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("study", "quant_scheme")
                    .str_field("scheme", name)
                    .f64_field("mean_rel_error", (err_sum / weights.len() as f32) as f64)
                    .u64_field("payload_bytes", bytes as u64)
                    .f64_field("pct_of_f32", 100.0 * bytes as f64 / f32_bytes as f64)
                    .finish()
            );
        } else {
            println!(
                "  {:<14} mean rel. error {:>9.5}  payload {:>7} B ({:>4.1}% of f32)",
                name,
                err_sum / weights.len() as f32,
                bytes,
                100.0 * bytes as f64 / f32_bytes as f64
            );
        }
    }

    if !json {
        println!();
        println!("Ablation 3c: flash access pattern (why near-storage scans win)");
        rule(60);
    }
    {
        use nessa_smartssd::ftl::Ftl;
        use nessa_smartssd::nand::NandConfig;
        use nessa_tensor::rng::Rng64 as FtlRng;
        // One epoch of CIFAR-10 at full scale: 50 000 records × 3 KB
        // ≈ 9 375 16-KB pages. NeSSA scans them sequentially on-board; a
        // host-side random sampler (the access pattern of per-sample
        // importance sampling) touches a 28 % subset at random.
        let pages = 9_375usize;
        let mut seq = Ftl::format(NandConfig::default(), pages);
        let t_seq = seq.read_pages(0, pages);
        let mut rng = FtlRng::new(SEED);
        let sample: Vec<usize> = rng.sample_indices(pages, pages * 28 / 100);
        let mut rand = Ftl::format(NandConfig::default(), pages);
        let t_rand = rand.read_scattered(&sample);
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("study", "flash_access")
                    .u64_field("pages", pages as u64)
                    .f64_field("sequential_scan_s", t_seq)
                    .f64_field("random_sample_s", t_rand)
                    .u64_field("sampled_pages", sample.len() as u64)
                    .f64_field(
                        "per_page_slowdown",
                        (t_rand / sample.len() as f64) / (t_seq / pages as f64)
                    )
                    .finish()
            );
        } else {
            println!(
                "  sequential full scan : {:>8.4} s  ({} pages)",
                t_seq, pages
            );
            println!(
                "  random 28 % sample   : {:>8.4} s  ({} pages) — {:.1}x slower per page",
                t_rand,
                sample.len(),
                (t_rand / sample.len() as f64) / (t_seq / pages as f64)
            );
        }
    }

    if !json {
        println!();
        println!("Ablation 4: informed selection vs stratified random, by budget");
        rule(60);
    }
    for fraction in [0.05f32, 0.10, 0.30] {
        let random = run_scaled(&Policy::Random { fraction }, &train, &test, EPOCHS, SEED);
        let nessa = run_scaled(
            &Policy::Nessa(NessaConfig::new(fraction, EPOCHS)),
            &train,
            &test,
            EPOCHS,
            SEED,
        );
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("study", "selection_vs_random")
                    .f64_field("subset_pct", (100.0 * fraction) as f64)
                    .f64_field("random_acc", (100.0 * random.best_accuracy()) as f64)
                    .f64_field("nessa_acc", (100.0 * nessa.best_accuracy()) as f64)
                    .u64_field("batch", BATCH as u64)
                    .finish()
            );
        } else {
            println!(
                "  subset {:>3.0} %: random {:.2} %   nessa {:.2} %   (batch {BATCH})",
                100.0 * fraction,
                100.0 * random.best_accuracy(),
                100.0 * nessa.best_accuracy(),
            );
        }
    }
    if !json {
        println!("  (informed selection matters most at small budgets; stratified");
        println!("  random closes the gap as the budget covers the data's modes)");
    }
}
