//! Table 2: accuracy and subset size of NeSSA vs. full-data training on
//! all six datasets (scaled synthetic stand-ins; see DESIGN.md §2).
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin table2`.
//! Pass `--json` to emit one JSON object per dataset row instead of the
//! human-readable table.

use nessa_bench::{rule, run_scaled, scaled_dataset, EPOCHS, SEED};
use nessa_core::{NessaConfig, Policy};
use nessa_data::DatasetSpec;
use nessa_telemetry::json::JsonObject;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if !json {
        println!("Table 2: NeSSA vs full-data training ({EPOCHS} epochs, scaled datasets)");
        rule(86);
        println!(
            "{:<14} {:>5} {:>6} | {:>9} {:>9} {:>8} | {:>9} {:>9} {:>8}",
            "Dataset",
            "Cls",
            "Train",
            "Full(p)",
            "NeSSA(p)",
            "Sub%(p)",
            "Full(m)",
            "NeSSA(m)",
            "Sub%(m)"
        );
        rule(86);
    }
    for spec in DatasetSpec::table1() {
        let paper = spec.paper.expect("table 2 row");
        let (train, test) = scaled_dataset(&spec, SEED);
        let goal = run_scaled(&Policy::Goal, &train, &test, EPOCHS, SEED);
        // Start slightly above the paper's operating point and let dynamic
        // sizing settle onto it (the Table-2 subset column is the outcome
        // of that reduction, not an input).
        let mut cfg = NessaConfig::new(1.05 * paper.subset_pct / 100.0, EPOCHS);
        cfg.dynamic_sizing = true;
        cfg.sizing_min_fraction = 0.9 * paper.subset_pct / 100.0;
        let nessa = run_scaled(&Policy::Nessa(cfg), &train, &test, EPOCHS, SEED);
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("dataset", spec.name)
                    .u64_field("classes", spec.classes as u64)
                    .u64_field("train_size", train.len() as u64)
                    .f64_field("paper_full_acc", paper.all_data_acc as f64)
                    .f64_field("paper_nessa_acc", paper.nessa_acc as f64)
                    .f64_field("paper_subset_pct", paper.subset_pct as f64)
                    .f64_field("full_acc", 100.0 * goal.best_accuracy() as f64)
                    .f64_field("nessa_acc", 100.0 * nessa.best_accuracy() as f64)
                    .f64_field("subset_pct", nessa.mean_subset_pct() as f64)
                    .finish()
            );
        } else {
            println!(
                "{:<14} {:>5} {:>6} | {:>9.2} {:>9.2} {:>8.0} | {:>9.2} {:>9.2} {:>8.1}",
                spec.name,
                spec.classes,
                train.len(),
                paper.all_data_acc,
                paper.nessa_acc,
                paper.subset_pct,
                100.0 * goal.best_accuracy(),
                100.0 * nessa.best_accuracy(),
                nessa.mean_subset_pct(),
            );
        }
    }
    if !json {
        rule(86);
        println!("(p) = paper, (m) = measured on the scaled stand-in.");
    }
}
