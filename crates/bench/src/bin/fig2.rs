//! Figure 2: share of training time spent on data movement, NVIDIA V100.
//!
//! Profiles MNIST, CIFAR-10, CIFAR-100 and ImageNet-100 exactly as the
//! paper's §1 experiment: a fixed reference training workload fed by the
//! conventional loader, with the per-image byte footprint varying by
//! dataset. Paper endpoints: MNIST 5.4 %, ImageNet-100 40.4 %.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin fig2`.

use nessa_bench::rule;
use nessa_data::DatasetSpec;
use nessa_nn::cost::{epoch_time, DeviceSpec, LoaderSpec};

/// ResNet-18-class reference workload (forward+backward FLOPs/sample).
const REF_TRAIN_FLOPS: u64 = 3 * 825_000_000;

fn main() {
    let device = DeviceSpec::v100();
    let loader = LoaderSpec::conventional_host();
    println!(
        "Figure 2: time distribution of training ({} + conventional loader)",
        device.name
    );
    rule(72);
    println!(
        "{:<14} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "Dataset", "Images", "KB/image", "Compute (s)", "Data-mv (s)", "Data-mv %"
    );
    rule(72);
    let mut specs = vec![DatasetSpec::mnist()];
    for name in ["CIFAR-10", "CIFAR-100", "ImageNet-100"] {
        specs.push(DatasetSpec::by_name(name).expect("catalog entry"));
    }
    for spec in &specs {
        let t = epoch_time(
            &device,
            &loader,
            spec.train_size as u64,
            REF_TRAIN_FLOPS,
            spec.bytes_per_image as u64,
        );
        println!(
            "{:<14} {:>8} {:>10.1} {:>12.1} {:>12.1} {:>10.1}",
            spec.name,
            spec.train_size,
            spec.bytes_per_image as f64 / 1000.0,
            t.compute_s,
            t.io_s,
            100.0 * t.io_fraction()
        );
    }
    rule(72);
    println!("Paper endpoints: MNIST 5.4 %, ImageNet-100 40.4 %.");
}
