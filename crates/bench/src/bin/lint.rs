//! The `nessa-lint` command-line gate.
//!
//! ```text
//! cargo run --release --bin lint                 # human report, exit 1 on new debt
//! cargo run --release --bin lint -- --json       # machine report (CI artifact)
//! cargo run --release --bin lint -- --write-baseline   # re-freeze current debt
//! ```
//!
//! Exit codes: `0` clean (baselined debt may remain), `1` new
//! violations beyond the baseline, `2` usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use nessa_lint::baseline::Baseline;
use nessa_lint::{lint_with_baseline, report};

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
}

const USAGE: &str = "usage: lint [--root <dir>] [--baseline <file>] [--json] [--write-baseline]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a file")?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("crates/lint/baseline.toml"));

    let baseline = if baseline_path.exists() {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("lint: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let outcome = lint_with_baseline(&args.root, &baseline);

    if args.write_baseline {
        let fresh = Baseline::from_counts(&outcome.counts());
        if let Err(e) = std::fs::write(&baseline_path, fresh.to_toml()) {
            eprintln!("lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "lint: wrote {} entr{} to {}",
            fresh.len(),
            if fresh.len() == 1 { "y" } else { "ies" },
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", report::json(&outcome));
    } else {
        print!("{}", report::human(&outcome));
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
