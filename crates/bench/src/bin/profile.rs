//! Run profiler: executes a short NeSSA training run with telemetry
//! enabled, prints the span timeline, and (in JSONL mode) cross-checks
//! the emitted artifact against the run report.
//!
//! The output path is picked in precedence order: `--out <path>` on the
//! command line, then the `NESSA_TELEMETRY` environment variable
//! (`memory|timeline|jsonl|jsonl:<path>`), then the default
//! `target/nessa-profile.jsonl` — so the binary always produces an
//! artifact without littering the working directory. Run with
//! `cargo run --release -p nessa-bench --bin profile -- --out run.jsonl`.
//!
//! `--chaos` arms the canonical fault scenario (permanent kernel failure
//! from epoch 3 on drive 0, drive 1 dropping out during epoch 2 of a
//! two-drive cluster) and asserts the degradation ladder carried the run:
//! the resulting profile feeds the CI chaos gate, which bounds the
//! fault-tolerance overhead against the fault-free baseline.
//!
//! `--overlap` runs a train-heavy twin of the workload twice — once
//! sequentially, once with the overlapped scheduler — and compares them
//! at the same seed. It always verifies the overlapped artifact's span
//! shape and the ledger's critical-path composition; on a multicore host
//! it additionally asserts the measured payoff (end-to-end wall time cut
//! by ≥ 20 %, mean measured overlap ratio ≥ 0.5). A single core cannot
//! physically run the two sides at once, so there the wall-clock gates
//! are reported but not enforced.

use nessa_bench::{model_builder, rule, BATCH, SEED};
use nessa_core::{NessaConfig, NessaPipeline, RunReport};
use nessa_data::SynthConfig;
use nessa_nn::models::mlp;
use nessa_smartssd::FaultPlan;
use nessa_telemetry::{extract_num_field, extract_str_field, TelemetryMode, TelemetrySettings};
use nessa_tensor::rng::Rng64;
use nessa_trace::{RunTrace, TraceReport};
use std::fs;
use std::time::Instant;

/// Epoch phases the pipeline emits one span for per (selection) epoch.
const PHASES: [&str; 5] = ["scan", "select", "ship", "train", "feedback"];

const EPOCHS: usize = 6;

/// Epochs for the `--overlap` scenario: a couple more than the default
/// profile so the rescaled lr schedule gives the wider model enough
/// full-rate steps to converge, and the synchronous prologue round is
/// amortized over more pipelined ones.
const OVERLAP_EPOCHS: usize = 10;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chaos = args.iter().any(|a| a == "--chaos");
    let overlap = args.iter().any(|a| a == "--overlap");
    if chaos && overlap {
        eprintln!("profile: --chaos and --overlap are separate scenarios; pick one");
        std::process::exit(2);
    }
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|pos| args.get(pos + 1).expect("--out needs a path").clone());
    let mut settings = TelemetrySettings::from_env();
    if let Some(path) = out {
        settings = TelemetrySettings::jsonl(path);
    } else if settings.mode == TelemetryMode::Off {
        settings = TelemetrySettings::jsonl("target/nessa-profile.jsonl");
    }
    if settings.mode == TelemetryMode::Jsonl {
        if let Some(dir) = settings.resolved_jsonl_path().parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("output directory creatable");
            }
        }
    }
    if overlap {
        profile_overlap(settings);
        return;
    }
    let synth = SynthConfig {
        train: 600,
        test: 200,
        dim: 16,
        classes: 4,
        cluster_std: 0.7,
        class_sep: 3.0,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let mut cfg = NessaConfig::new(0.3, EPOCHS)
        .with_batch_size(BATCH)
        .with_seed(SEED)
        .with_telemetry(settings);
    if chaos {
        cfg = cfg
            .with_drives(2)
            .with_fault_plan(0, FaultPlan::none().with_kernel_abort(3, u32::MAX))
            .with_fault_plan(1, FaultPlan::none().with_dropout_after(10));
    }
    let builder = model_builder(train.dim(), train.classes());
    let mut rng = Rng64::new(SEED);
    let target = builder(&mut rng);
    let selector = builder(&mut rng);
    let mut pipeline = NessaPipeline::new(cfg, target, selector, train, test);
    let report = pipeline.run().expect("pipeline run failed");
    if chaos {
        verify_chaos(&pipeline);
    }

    println!("profile run: {report}");
    rule(72);
    print!("{}", pipeline.telemetry().render_timeline());
    rule(72);

    match pipeline.telemetry().jsonl_path() {
        Some(path) => {
            let path = path.to_path_buf();
            let text = fs::read_to_string(&path).expect("telemetry artifact readable");
            if chaos {
                // Under faults a phase can legitimately emit retry and
                // fallback spans alongside its own, so only the line
                // framing is checked.
                for line in text.lines() {
                    assert!(
                        line.starts_with('{') && line.ends_with('}'),
                        "malformed JSONL line: {line}"
                    );
                }
                println!(
                    "JSONL artifact: {} ({} lines, chaos mode: span-shape check relaxed)",
                    path.display(),
                    text.lines().count()
                );
            } else {
                verify_artifact(&text, &report);
                println!(
                    "JSONL artifact: {} ({} lines, spans consistent with the run report)",
                    path.display(),
                    text.lines().count()
                );
            }
        }
        None => println!("(no JSONL artifact in this mode; set NESSA_TELEMETRY=jsonl)"),
    }
}

/// Asserts the canned chaos scenario actually exercised the ladder: at
/// least one host fallback, exactly one eviction, and the survivor's
/// timeline still covering every epoch.
fn verify_chaos(pipeline: &NessaPipeline) {
    let snapshot = pipeline.telemetry().metrics_snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(
        counter("fallback.host") >= 1,
        "chaos scenario must reach the host rung"
    );
    assert_eq!(counter("drive.evicted"), 1, "exactly one drive drops out");
    assert!(counter("fault.injected") >= 2);
    assert_eq!(pipeline.device().len(), 1, "one survivor drive");
    println!(
        "chaos: injected={} retries={} host_fallbacks={} evicted={}",
        counter("fault.injected"),
        counter("retry.attempts"),
        counter("fallback.host"),
        counter("drive.evicted"),
    );
}

/// The `--overlap` scenario: a train-heavy twin of the profile workload,
/// run sequentially and overlapped at the same seed. The default
/// workload's selection side outweighs its training ~10:1, which leaves
/// overlap nothing worth hiding; this twin trains a deeper MLP (at a
/// gentler base lr — the paper's 0.1 diverges at this width) and smaller
/// batches so every selection round can hide completely under training.
fn profile_overlap(settings: TelemetrySettings) {
    let synth = SynthConfig {
        train: 600,
        test: 200,
        dim: 16,
        classes: 4,
        cluster_std: 0.7,
        class_sep: 3.0,
        ..SynthConfig::default()
    };
    let run_once = |overlap: bool, settings: TelemetrySettings| {
        let (train, test) = synth.generate();
        let cfg = NessaConfig::new(0.3, OVERLAP_EPOCHS)
            .with_batch_size(16)
            .with_base_lr(0.02)
            .with_seed(SEED)
            .with_overlap(overlap)
            .with_telemetry(settings);
        let mut rng = Rng64::new(SEED);
        let target = mlp(&[16, 256, 128, 4], &mut rng);
        let selector = mlp(&[16, 256, 128, 4], &mut rng);
        let mut pipeline = NessaPipeline::new(cfg, target, selector, train, test);
        let started = Instant::now();
        let report = pipeline.run().expect("pipeline run failed");
        (report, pipeline, started.elapsed().as_secs_f64())
    };

    // Sequential twin first (its artifact lands next to the overlapped
    // one, same telemetry mode so the wall comparison is apples to
    // apples), then the overlapped run on the requested path.
    let seq_settings = match settings.mode {
        TelemetryMode::Jsonl => {
            TelemetrySettings::jsonl(settings.resolved_jsonl_path().with_extension("seq.jsonl"))
        }
        _ => settings.clone(),
    };
    let (_, _, seq_wall) = run_once(false, seq_settings);
    let (report, pipeline, ovl_wall) = run_once(true, settings.clone());

    println!("overlap profile run: {report}");
    rule(72);
    print!("{}", pipeline.telemetry().render_timeline());
    rule(72);

    // Ledger arithmetic holds on any machine: serializing each epoch's
    // two sides must cost at least the pipelined critical path, and the
    // difference is exactly the hidden device time.
    let mut serialized = 0.0;
    let mut pipelined = 0.0;
    for rec in &report.epochs {
        let o = rec
            .overlap
            .as_ref()
            .expect("overlap mode records a ledger for every epoch");
        assert!(o.staleness <= 1, "feedback may age at most one epoch");
        serialized += o.sync_secs + o.select_side_secs + o.train_secs + o.handoff_secs;
        pipelined += rec.total_secs();
    }
    assert!(
        pipelined <= serialized + 1e-12,
        "pipelined sim total {pipelined} exceeds the serialized schedule {serialized}"
    );
    let hidden = pipeline.device().hidden_secs();
    println!(
        "simulated schedule: serialized {serialized:.6}s, pipelined {pipelined:.6}s \
         ({:.1}% shorter; {hidden:.6}s of device time hidden under training)",
        100.0 * (1.0 - pipelined / serialized)
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = seq_wall / ovl_wall;
    println!("wall time: sequential {seq_wall:.3}s, overlapped {ovl_wall:.3}s ({speedup:.2}x)");

    if settings.mode == TelemetryMode::Jsonl {
        let path = settings.resolved_jsonl_path();
        let text = fs::read_to_string(&path).expect("telemetry artifact readable");
        verify_overlap_artifact(&text, &report);
        let trace = RunTrace::from_str(&text).expect("telemetry artifact re-parses as a trace");
        let measured = TraceReport::from_trace(&trace).mean_overlap_ratio();
        match measured {
            Some(r) => println!("mean measured overlap ratio: {r:.3}"),
            None => println!("mean measured overlap ratio: - (no measurable epoch)"),
        }
        println!(
            "JSONL artifact: {} ({} lines, overlap span shape verified)",
            path.display(),
            text.lines().count()
        );
        if cores >= 2 {
            let r = measured.expect("a multicore overlapped run always has measurable epochs");
            assert!(
                r >= 0.5,
                "measured overlap ratio {r:.3} below 0.5 on a {cores}-core host"
            );
            assert!(
                speedup >= 1.2,
                "overlap must cut end-to-end wall time by >= 20% on a {cores}-core host \
                 (sequential {seq_wall:.3}s vs overlapped {ovl_wall:.3}s)"
            );
            println!("multicore gates: ratio >= 0.5 and wall speedup >= 1.2x — ok");
        } else {
            println!(
                "single-core host: the OS serializes the worker and the trainer, so the \
                 wall-clock gates are reported above but not enforced; the simulated \
                 ledger and span-shape checks still ran"
            );
        }
    }
}

/// Structural check for the overlapped artifact: every subset is
/// selected exactly once wherever its round ran (prologue or worker
/// thread), every epoch trains and hands off exactly once, every
/// pipelined round is wrapped in `overlap.select`, and the epoch spans'
/// simulated seconds reproduce the report's critical-path composition.
fn verify_overlap_artifact(text: &str, report: &RunReport) {
    let span_lines: Vec<&str> = text
        .lines()
        .filter(|l| extract_str_field(l, "type").as_deref() == Some("span"))
        .collect();
    let count = |name: &str, field: &str, value: f64| {
        span_lines
            .iter()
            .filter(|l| {
                extract_str_field(l, "name").as_deref() == Some(name)
                    && extract_num_field(l, field) == Some(value)
            })
            .count()
    };
    for rec in &report.epochs {
        let e = rec.epoch as f64;
        for phase in ["scan", "select", "ship"] {
            assert_eq!(
                count(phase, "epoch", e),
                1,
                "epoch {}: subset must be {phase}ed exactly once",
                rec.epoch
            );
        }
        for phase in ["train", "overlap.handoff"] {
            assert_eq!(count(phase, "epoch", e), 1, "epoch {}: {phase}", rec.epoch);
        }
        if rec.epoch > 0 {
            assert_eq!(
                count("overlap.select", "for_epoch", e),
                1,
                "epoch {}: its round must run under an overlap.select wrapper",
                rec.epoch
            );
        }
        let epoch_span = span_lines
            .iter()
            .find(|l| {
                extract_str_field(l, "name").as_deref() == Some("epoch")
                    && extract_num_field(l, "epoch") == Some(e)
            })
            .unwrap_or_else(|| panic!("epoch {} span missing", rec.epoch));
        let sim = extract_num_field(epoch_span, "sim_s").expect("epoch span has sim_s");
        let expected = rec.total_secs();
        assert!(
            (sim - expected).abs() < 1e-9,
            "epoch {}: span sim {sim} != ledger critical path {expected}",
            rec.epoch
        );
    }
}

/// Checks that every line is a braced object, every epoch has one span
/// per phase, and per-epoch simulated-second span totals agree with the
/// run report within 1e-9.
fn verify_artifact(text: &str, report: &RunReport) {
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
    }
    let span_lines: Vec<&str> = text
        .lines()
        .filter(|l| extract_str_field(l, "type").as_deref() == Some("span"))
        .collect();
    for epoch in &report.epochs {
        let mut sim_total = 0.0;
        for phase in PHASES {
            let phase_spans: Vec<&&str> = span_lines
                .iter()
                .filter(|l| {
                    extract_str_field(l, "name").as_deref() == Some(phase)
                        && extract_num_field(l, "epoch") == Some(epoch.epoch as f64)
                })
                .collect();
            assert_eq!(
                phase_spans.len(),
                1,
                "epoch {}: expected exactly one {phase} span, got {}",
                epoch.epoch,
                phase_spans.len()
            );
            sim_total += extract_num_field(phase_spans[0], "sim_s")
                .unwrap_or_else(|| panic!("{phase} span missing sim_s"));
        }
        let expected = epoch.total_secs();
        assert!(
            (sim_total - expected).abs() < 1e-9,
            "epoch {}: span sim total {sim_total} != report {expected}",
            epoch.epoch
        );
    }
}
