//! Run profiler: executes a short NeSSA training run with telemetry
//! enabled, prints the span timeline, and (in JSONL mode) cross-checks
//! the emitted artifact against the run report.
//!
//! The output path is picked in precedence order: `--out <path>` on the
//! command line, then the `NESSA_TELEMETRY` environment variable
//! (`memory|timeline|jsonl|jsonl:<path>`), then the default
//! `target/nessa-profile.jsonl` — so the binary always produces an
//! artifact without littering the working directory. Run with
//! `cargo run --release -p nessa-bench --bin profile -- --out run.jsonl`.
//!
//! `--chaos` arms the canonical fault scenario (permanent kernel failure
//! from epoch 3 on drive 0, drive 1 dropping out during epoch 2 of a
//! two-drive cluster) and asserts the degradation ladder carried the run:
//! the resulting profile feeds the CI chaos gate, which bounds the
//! fault-tolerance overhead against the fault-free baseline.

use nessa_bench::{model_builder, rule, BATCH, SEED};
use nessa_core::{NessaConfig, NessaPipeline, RunReport};
use nessa_data::SynthConfig;
use nessa_smartssd::FaultPlan;
use nessa_telemetry::{extract_num_field, extract_str_field, TelemetryMode, TelemetrySettings};
use nessa_tensor::rng::Rng64;
use std::fs;

/// Epoch phases the pipeline emits one span for per (selection) epoch.
const PHASES: [&str; 5] = ["scan", "select", "ship", "train", "feedback"];

const EPOCHS: usize = 6;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chaos = args.iter().any(|a| a == "--chaos");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|pos| args.get(pos + 1).expect("--out needs a path").clone());
    let mut settings = TelemetrySettings::from_env();
    if let Some(path) = out {
        settings = TelemetrySettings::jsonl(path);
    } else if settings.mode == TelemetryMode::Off {
        settings = TelemetrySettings::jsonl("target/nessa-profile.jsonl");
    }
    if settings.mode == TelemetryMode::Jsonl {
        if let Some(dir) = settings.resolved_jsonl_path().parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("output directory creatable");
            }
        }
    }
    let synth = SynthConfig {
        train: 600,
        test: 200,
        dim: 16,
        classes: 4,
        cluster_std: 0.7,
        class_sep: 3.0,
        ..SynthConfig::default()
    };
    let (train, test) = synth.generate();
    let mut cfg = NessaConfig::new(0.3, EPOCHS)
        .with_batch_size(BATCH)
        .with_seed(SEED)
        .with_telemetry(settings);
    if chaos {
        cfg = cfg
            .with_drives(2)
            .with_fault_plan(0, FaultPlan::none().with_kernel_abort(3, u32::MAX))
            .with_fault_plan(1, FaultPlan::none().with_dropout_after(10));
    }
    let builder = model_builder(train.dim(), train.classes());
    let mut rng = Rng64::new(SEED);
    let target = builder(&mut rng);
    let selector = builder(&mut rng);
    let mut pipeline = NessaPipeline::new(cfg, target, selector, train, test);
    let report = pipeline.run().expect("pipeline run failed");
    if chaos {
        verify_chaos(&pipeline);
    }

    println!("profile run: {report}");
    rule(72);
    print!("{}", pipeline.telemetry().render_timeline());
    rule(72);

    match pipeline.telemetry().jsonl_path() {
        Some(path) => {
            let path = path.to_path_buf();
            let text = fs::read_to_string(&path).expect("telemetry artifact readable");
            if chaos {
                // Under faults a phase can legitimately emit retry and
                // fallback spans alongside its own, so only the line
                // framing is checked.
                for line in text.lines() {
                    assert!(
                        line.starts_with('{') && line.ends_with('}'),
                        "malformed JSONL line: {line}"
                    );
                }
                println!(
                    "JSONL artifact: {} ({} lines, chaos mode: span-shape check relaxed)",
                    path.display(),
                    text.lines().count()
                );
            } else {
                verify_artifact(&text, &report);
                println!(
                    "JSONL artifact: {} ({} lines, spans consistent with the run report)",
                    path.display(),
                    text.lines().count()
                );
            }
        }
        None => println!("(no JSONL artifact in this mode; set NESSA_TELEMETRY=jsonl)"),
    }
}

/// Asserts the canned chaos scenario actually exercised the ladder: at
/// least one host fallback, exactly one eviction, and the survivor's
/// timeline still covering every epoch.
fn verify_chaos(pipeline: &NessaPipeline) {
    let snapshot = pipeline.telemetry().metrics_snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(
        counter("fallback.host") >= 1,
        "chaos scenario must reach the host rung"
    );
    assert_eq!(counter("drive.evicted"), 1, "exactly one drive drops out");
    assert!(counter("fault.injected") >= 2);
    assert_eq!(pipeline.device().len(), 1, "one survivor drive");
    println!(
        "chaos: injected={} retries={} host_fallbacks={} evicted={}",
        counter("fault.injected"),
        counter("retry.attempts"),
        counter("fallback.host"),
        counter("drive.evicted"),
    );
}

/// Checks that every line is a braced object, every epoch has one span
/// per phase, and per-epoch simulated-second span totals agree with the
/// run report within 1e-9.
fn verify_artifact(text: &str, report: &RunReport) {
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
    }
    let span_lines: Vec<&str> = text
        .lines()
        .filter(|l| extract_str_field(l, "type").as_deref() == Some("span"))
        .collect();
    for epoch in &report.epochs {
        let mut sim_total = 0.0;
        for phase in PHASES {
            let phase_spans: Vec<&&str> = span_lines
                .iter()
                .filter(|l| {
                    extract_str_field(l, "name").as_deref() == Some(phase)
                        && extract_num_field(l, "epoch") == Some(epoch.epoch as f64)
                })
                .collect();
            assert_eq!(
                phase_spans.len(),
                1,
                "epoch {}: expected exactly one {phase} span, got {}",
                epoch.epoch,
                phase_spans.len()
            );
            sim_total += extract_num_field(phase_spans[0], "sim_s")
                .unwrap_or_else(|| panic!("{phase} span missing sim_s"));
        }
        let expected = epoch.total_secs();
        assert!(
            (sim_total - expected).abs() < 1e-9,
            "epoch {}: span sim total {sim_total} != report {expected}",
            epoch.epoch
        );
    }
}
