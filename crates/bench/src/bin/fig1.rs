//! Figure 1: training time per epoch on ImageNet-1k for each model
//! generation, NVIDIA A100.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin fig1`.

use nessa_bench::rule;
use nessa_nn::cost::DeviceSpec;
use nessa_nn::zoo::imagenet_models;

fn main() {
    let device = DeviceSpec::a100();
    println!(
        "Figure 1: per-epoch ImageNet-1k training time ({})",
        device.name
    );
    rule(66);
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>12}",
        "Model", "Year", "GFLOPs/img", "Params (M)", "Epoch (min)"
    );
    rule(66);
    for m in imagenet_models() {
        let t = m.imagenet_epoch_time(&device);
        println!(
            "{:<18} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            m.name,
            m.year,
            m.forward_flops as f64 / 1e9,
            m.params as f64 / 1e6,
            t.total_s() / 60.0
        );
    }
    rule(66);
    let zoo = imagenet_models();
    let first = zoo.first().unwrap().imagenet_epoch_time(&device).total_s();
    let last = zoo.last().unwrap().imagenet_epoch_time(&device).total_s();
    println!(
        "Growth 2012→2021: {:.1}x per-epoch time (paper: exponential rise)",
        last / first
    );
}
