//! §4.4: benefits of storage-assisted training — P2P vs host-staged
//! bandwidth (paper: 2.14x) and interconnect data-movement reduction
//! (paper: 3.47x average).
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin movement`.

use nessa_bench::rule;
use nessa_core::timing::{mean_data_movement_reduction, Workload};
use nessa_data::DatasetSpec;
use nessa_smartssd::LinkModel;

fn main() {
    println!("Section 4.4: benefits of storage-assisted training");
    rule(70);
    // Bandwidth comparison at each dataset's record size, batch 128.
    let p2p = LinkModel::p2p();
    let host = LinkModel::host_staged();
    println!(
        "{:<14} {:>12} {:>12} {:>10} | {:>14}",
        "Dataset", "P2P GB/s", "Host GB/s", "Ratio", "Movement red."
    );
    rule(70);
    let specs = DatasetSpec::table1();
    let mut ratio_sum = 0.0;
    for spec in &specs {
        let b = spec.bytes_per_image as u64;
        let tp = p2p.effective_bytes_per_s(128, b) / 1e9;
        let th = host.effective_bytes_per_s(128, b) / 1e9;
        ratio_sum += tp / th;
        let w = Workload::from_spec(spec);
        let paper = spec.paper.expect("table 2 row");
        let full_bytes = w.samples as f64 * w.bytes_per_sample as f64;
        let subset_bytes =
            (w.samples as f64 * paper.subset_pct as f64 / 100.0).ceil() * w.bytes_per_sample as f64;
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>9.2}x | {:>13.2}x",
            spec.name,
            tp,
            th,
            tp / th,
            full_bytes / subset_bytes
        );
    }
    rule(70);
    println!(
        "Average P2P/host bandwidth ratio: {:.2}x   (paper: 2.14x)",
        ratio_sum / specs.len() as f64
    );
    println!(
        "Average interconnect data-movement reduction: {:.2}x   (paper: 3.47x)",
        mean_data_movement_reduction(&specs)
    );
}
