//! Table 1: dataset overview — the catalog as the paper prints it, plus
//! the scaled stand-in each accuracy experiment actually trains on.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin table1`.

use nessa_bench::{rule, SEED};
use nessa_data::DatasetSpec;

fn main() {
    println!("Table 1: dataset overview");
    rule(86);
    println!(
        "{:<14} {:>7} {:>9} {:<10} | {:>11} {:>9} {:>6}",
        "Dataset", "Classes", "Train", "Network", "Scaled train", "Test", "Dim"
    );
    rule(86);
    for spec in DatasetSpec::table1() {
        let cfg = spec.scaled_config(SEED);
        println!(
            "{:<14} {:>7} {:>9} {:<10} | {:>11} {:>9} {:>6}",
            spec.name,
            spec.classes,
            spec.train_size,
            spec.model.name(),
            cfg.train,
            cfg.test,
            cfg.dim
        );
    }
    rule(86);
    println!("Left: the paper's Table 1. Right: the synthetic stand-in (DESIGN.md §2).");
}
