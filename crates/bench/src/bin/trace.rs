//! Offline trace analyzer CLI over `nessa-trace`.
//!
//! ```text
//! trace report  <run.jsonl> [--min-overlap <ratio>]
//! trace export  <run.jsonl> [--out <path>]
//! trace summary <run.jsonl> [--out <path>]
//! trace diff    <baseline> <current> [--max-regress <pct>] [--wall]
//!               [--bench-out <path>]
//! ```
//!
//! * **report** prints per-epoch phase breakdowns, critical paths, the
//!   selection-vs-training overlap ratio, and histogram quantiles. With
//!   `--min-overlap <ratio>` it **exits nonzero** when the mean *measured*
//!   overlap ratio (concurrent span-interval intersection) falls below the
//!   threshold — the CI gate for overlapped pipelining. Only meaningful
//!   for traces captured on a multicore host: a single core serializes
//!   the two sides and measures ≈ 0 no matter how the run was scheduled.
//! * **export** writes Chrome trace-event JSON (open in `chrome://tracing`
//!   or <https://ui.perfetto.dev>). Default output: the input path with a
//!   `.trace.json` extension.
//! * **summary** writes the condensed run summary JSON — the format
//!   checked in as a regression baseline.
//! * **diff** compares two runs (each argument may be a telemetry JSONL
//!   stream or an already-condensed summary JSON; the format is
//!   auto-detected) and **exits nonzero** when a gated metric regresses
//!   more than the tolerance (default 10 %). Gates cover simulated-clock
//!   metrics only unless `--wall` is given. `--bench-out` additionally
//!   writes the `BENCH_pipeline.json` artifact.

use nessa_telemetry::JsonValue;
use nessa_trace::{
    bench_artifact, chrome_trace, diff_runs, DiffGates, RunSummary, RunTrace, TraceReport,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace report  <run.jsonl> [--min-overlap <ratio>]\n       \
                trace export  <run.jsonl> [--out <path>]\n       \
                trace summary <run.jsonl> [--out <path>]\n       \
                trace diff    <baseline> <current> [--max-regress <pct>] [--wall] [--bench-out <path>]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace: {msg}");
    ExitCode::from(2)
}

/// Loads either a raw telemetry JSONL stream or a pre-condensed
/// `nessa-run-summary` JSON file, auto-detected by content.
fn load_summary(path: &Path) -> Result<RunSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if let Ok(v) = JsonValue::parse(&text) {
        if let Some(summary) = RunSummary::from_json(&v) {
            return Ok(summary);
        }
    }
    let trace = RunTrace::from_str(&text).map_err(|e| {
        format!(
            "{}: not a run summary and not a telemetry stream: {e}",
            path.display()
        )
    })?;
    Ok(RunSummary::from_trace(&trace))
}

fn write_out(path: &Path, contents: &str) -> Result<(), String> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Parses `--out <path>` style flags out of the tail arguments; returns
/// an error message on anything unrecognized.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        return Ok(Some(value));
    }
    Ok(None)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "report" => {
            let min_overlap = match take_flag(&mut args, "--min-overlap") {
                Ok(o) => o,
                Err(e) => return fail(&e),
            };
            let min_overlap = match min_overlap {
                None => None,
                Some(raw) => match raw.parse::<f64>() {
                    Ok(r) if (0.0..=1.0).contains(&r) => Some(r),
                    _ => {
                        return fail(&format!(
                            "--min-overlap expects a ratio in [0, 1], got {raw}"
                        ))
                    }
                },
            };
            let [input] = args.as_slice() else {
                return usage();
            };
            let trace = match RunTrace::from_path(input) {
                Ok(t) => t,
                Err(e) => return fail(&e.to_string()),
            };
            let report = TraceReport::from_trace(&trace);
            print!("{}", report.render());
            if let Some(threshold) = min_overlap {
                let Some(measured) = report.mean_overlap_ratio() else {
                    eprintln!(
                        "trace: --min-overlap {threshold} requested but no epoch has both a \
                         selection side and a train span to measure"
                    );
                    return ExitCode::FAILURE;
                };
                if measured < threshold {
                    eprintln!(
                        "trace: mean measured overlap ratio {measured:.3} below the \
                         --min-overlap {threshold} gate"
                    );
                    return ExitCode::FAILURE;
                }
                println!("overlap gate: mean measured ratio {measured:.3} >= {threshold} — ok");
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let out = match take_flag(&mut args, "--out") {
                Ok(o) => o,
                Err(e) => return fail(&e),
            };
            let [input] = args.as_slice() else {
                return usage();
            };
            let trace = match RunTrace::from_path(input) {
                Ok(t) => t,
                Err(e) => return fail(&e.to_string()),
            };
            let out = out
                .map(PathBuf::from)
                .unwrap_or_else(|| Path::new(input).with_extension("trace.json"));
            if let Err(e) = write_out(&out, &chrome_trace(&trace)) {
                return fail(&e);
            }
            println!(
                "wrote {} ({} host spans, {} device events) — load in chrome://tracing or ui.perfetto.dev",
                out.display(),
                trace.tree.len(),
                trace.device_events.len()
            );
            ExitCode::SUCCESS
        }
        "summary" => {
            let out = match take_flag(&mut args, "--out") {
                Ok(o) => o,
                Err(e) => return fail(&e),
            };
            let [input] = args.as_slice() else {
                return usage();
            };
            let summary = match load_summary(Path::new(input)) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let mut json = summary.to_json();
            json.push('\n');
            match out {
                Some(path) => {
                    let path = PathBuf::from(path);
                    if let Err(e) = write_out(&path, &json) {
                        return fail(&e);
                    }
                    println!("wrote {}", path.display());
                }
                None => print!("{json}"),
            }
            ExitCode::SUCCESS
        }
        "diff" => {
            let max_regress = match take_flag(&mut args, "--max-regress") {
                Ok(o) => o,
                Err(e) => return fail(&e),
            };
            let bench_out = match take_flag(&mut args, "--bench-out") {
                Ok(o) => o,
                Err(e) => return fail(&e),
            };
            let gate_wall = if let Some(pos) = args.iter().position(|a| a == "--wall") {
                args.remove(pos);
                true
            } else {
                false
            };
            let [base_path, cur_path] = args.as_slice() else {
                return usage();
            };
            let mut gates = DiffGates {
                gate_wall,
                ..DiffGates::default()
            };
            if let Some(pct) = max_regress {
                match pct.parse::<f64>() {
                    Ok(p) if p >= 0.0 => gates.max_regress_pct = p,
                    _ => return fail(&format!("--max-regress expects a percentage, got {pct}")),
                }
            }
            let base = match load_summary(Path::new(base_path)) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let current = match load_summary(Path::new(cur_path)) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let report = diff_runs(&base, &current, gates);
            print!("{}", report.render());
            if let Some(path) = bench_out {
                let path = PathBuf::from(path);
                if let Err(e) = write_out(&path, &bench_artifact(&base, &current, &report)) {
                    return fail(&e);
                }
                println!("wrote {}", path.display());
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
