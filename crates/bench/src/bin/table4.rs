//! Table 4: KU15P resource utilization of the selection kernel.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin table4`.

use nessa_bench::rule;
use nessa_smartssd::resources::{KernelResourceConfig, ResourceReport};

fn main() {
    let cfg = KernelResourceConfig::cifar10();
    let report = ResourceReport::for_kernel(&cfg);
    println!("Table 4: resource utilization (CIFAR-10 selection kernel)");
    rule(34);
    println!("{report}");
    rule(34);
    let (lut, ff, bram, dsp) = report.utilization_pct();
    println!("Paper:      LUT 67.53  FF 23.14  BRAM 50.30  DSP 42.67");
    println!("Measured:   LUT {lut:>5.2}  FF {ff:>5.2}  BRAM {bram:>5.2}  DSP {dsp:>5.2}");
    assert!(report.fits(), "kernel must fit the KU15P");
}
