//! Figure 4: training time per epoch for NeSSA, CPU CRAIG, CPU K-Centers
//! and a model trained on the full dataset (CIFAR-10, ResNet-20, V100).
//! Includes the overlapped-pipelining variant (§3, Figure 3), where
//! selection for the next epoch hides under GPU training and only the
//! feedback hand-off serializes.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin fig4`.
//! Pass `--json` to emit one JSON object per policy row instead of the
//! human-readable table.

use nessa_bench::rule;
use nessa_core::timing::{
    craig_cpu_epoch, goal_epoch, kcenters_cpu_epoch, nessa_epoch, nessa_overlapped_epoch, Workload,
};
use nessa_data::DatasetSpec;
use nessa_nn::cost::DeviceSpec;
use nessa_telemetry::json::JsonObject;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let spec = DatasetSpec::by_name("CIFAR-10").expect("catalog entry");
    let fraction = spec.paper.expect("table 2 row").subset_pct as f64 / 100.0;
    let w = Workload::from_spec(&spec);
    let gpu = DeviceSpec::v100();
    let nessa = nessa_epoch(&w, &gpu, fraction);
    let ovl = nessa_overlapped_epoch(&w, &gpu, fraction);
    let craig = craig_cpu_epoch(&w, &gpu, fraction);
    let kcenters = kcenters_cpu_epoch(&w, &gpu, fraction);
    let full = goal_epoch(&w, &gpu);
    // (policy, data-movement s, selection s, training s, critical-path s).
    // For the overlapped row the selection side runs *under* training, so
    // its total is max(select, train) + hand-off, not the column sum.
    let rows = [
        (
            "NeSSA",
            nessa.data_move_s,
            nessa.select_s,
            nessa.train_s,
            nessa.total_s(),
        ),
        (
            "NeSSA (ovl)",
            ovl.handoff_s,
            ovl.select_side_s,
            ovl.train_s,
            ovl.total_s(),
        ),
        (
            "CRAIG",
            craig.data_move_s,
            craig.select_s,
            craig.train_s,
            craig.total_s(),
        ),
        (
            "K-Centers",
            kcenters.data_move_s,
            kcenters.select_s,
            kcenters.train_s,
            kcenters.total_s(),
        ),
        (
            "Full data",
            full.data_move_s,
            full.select_s,
            full.train_s,
            full.total_s(),
        ),
    ];
    if json {
        let base = nessa.total_s();
        for (name, data_move_s, select_s, train_s, total_s) in &rows {
            let mut obj = JsonObject::new()
                .str_field("policy", name)
                .str_field("dataset", spec.name)
                .f64_field("subset_fraction", fraction)
                .f64_field("data_move_s", *data_move_s)
                .f64_field("select_s", *select_s)
                .f64_field("train_s", *train_s)
                .f64_field("total_s", *total_s)
                .f64_field("speedup_vs_nessa", *total_s / base);
            if *name == "NeSSA (ovl)" {
                obj = obj.f64_field("hidden_s", ovl.hidden_s());
            }
            println!("{}", obj.finish());
        }
        return;
    }
    println!(
        "Figure 4: per-epoch training time, {} / {} / {} (subset {:.0} %)",
        spec.name,
        spec.model.name(),
        gpu.name,
        100.0 * fraction
    );
    rule(66);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "Policy", "Data-mv (s)", "Select (s)", "Train (s)", "Total (s)"
    );
    rule(66);
    for (name, data_move_s, select_s, train_s, total_s) in &rows {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            name, data_move_s, select_s, train_s, total_s
        );
    }
    rule(66);
    println!(
        "NeSSA (ovl): selection hides under training; total = max(select, \
         train) + hand-off ({:.2} s hidden per epoch)",
        ovl.hidden_s()
    );
    let base = nessa.total_s();
    println!(
        "Per-epoch totals vs NeSSA: overlap {:.2}x, CRAIG {:.1}x, K-Centers {:.1}x, full {:.1}x",
        rows[1].4 / base,
        rows[2].4 / base,
        rows[3].4 / base,
        rows[4].4 / base
    );
    println!("(paper, end-to-end incl. convergence: 4.3x, 8.1x, 5.37x)");
}
