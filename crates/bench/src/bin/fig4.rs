//! Figure 4: training time per epoch for NeSSA, CPU CRAIG, CPU K-Centers
//! and a model trained on the full dataset (CIFAR-10, ResNet-20, V100).
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin fig4`.
//! Pass `--json` to emit one JSON object per policy row instead of the
//! human-readable table.

use nessa_bench::rule;
use nessa_core::timing::{craig_cpu_epoch, goal_epoch, kcenters_cpu_epoch, nessa_epoch, Workload};
use nessa_data::DatasetSpec;
use nessa_nn::cost::DeviceSpec;
use nessa_telemetry::json::JsonObject;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let spec = DatasetSpec::by_name("CIFAR-10").expect("catalog entry");
    let fraction = spec.paper.expect("table 2 row").subset_pct as f64 / 100.0;
    let w = Workload::from_spec(&spec);
    let gpu = DeviceSpec::v100();
    let rows = [
        ("NeSSA", nessa_epoch(&w, &gpu, fraction)),
        ("CRAIG", craig_cpu_epoch(&w, &gpu, fraction)),
        ("K-Centers", kcenters_cpu_epoch(&w, &gpu, fraction)),
        ("Full data", goal_epoch(&w, &gpu)),
    ];
    if json {
        let nessa = rows[0].1.total_s();
        for (name, t) in &rows {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("policy", name)
                    .str_field("dataset", spec.name)
                    .f64_field("subset_fraction", fraction)
                    .f64_field("data_move_s", t.data_move_s)
                    .f64_field("select_s", t.select_s)
                    .f64_field("train_s", t.train_s)
                    .f64_field("total_s", t.total_s())
                    .f64_field("speedup_vs_nessa", t.total_s() / nessa)
                    .finish()
            );
        }
        return;
    }
    println!(
        "Figure 4: per-epoch training time, {} / {} / {} (subset {:.0} %)",
        spec.name,
        spec.model.name(),
        gpu.name,
        100.0 * fraction
    );
    rule(66);
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "Policy", "Data-mv (s)", "Select (s)", "Train (s)", "Total (s)"
    );
    rule(66);
    for (name, t) in &rows {
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            name,
            t.data_move_s,
            t.select_s,
            t.train_s,
            t.total_s()
        );
    }
    rule(66);
    let nessa = rows[0].1.total_s();
    println!(
        "Per-epoch speed-ups vs NeSSA: CRAIG {:.1}x, K-Centers {:.1}x, full {:.1}x",
        rows[1].1.total_s() / nessa,
        rows[2].1.total_s() / nessa,
        rows[3].1.total_s() / nessa
    );
    println!("(paper, end-to-end incl. convergence: 4.3x, 8.1x, 5.37x)");
}
