//! Future-work extension (paper §5: "scaling over multiple SmartSSDs and
//! GPUs"): how NeSSA's near-storage phases scale when the dataset is
//! sharded across a fleet of drives, using the GreeDi two-round selection
//! of `nessa-select`.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin scaling`.
//! Pass `--json` to emit one JSON object per drive count instead of the
//! human-readable table.

use nessa_bench::rule;
use nessa_core::timing::Workload;
use nessa_data::DatasetSpec;
use nessa_smartssd::cluster::SsdCluster;
use nessa_smartssd::fpga::KernelProfile;
use nessa_smartssd::SmartSsdConfig;
use nessa_telemetry::json::JsonObject;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let spec = DatasetSpec::by_name("ImageNet-100").expect("catalog entry");
    let w = Workload::from_spec(&spec);
    let fraction = 0.28f64;
    let subset = (w.samples as f64 * fraction).ceil() as u64;
    if !json {
        println!(
            "Scaling study: {} ({} records × {} KB) at a {:.0} % subset",
            spec.name,
            w.samples,
            w.bytes_per_sample / 1000,
            100.0 * fraction
        );
        rule(78);
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
            "Drives", "Scan (s)", "Select(s)", "Gather(s)", "Total (s)", "Speedup", "Energy(J)"
        );
        rule(78);
    }
    let mut baseline = None;
    for drives in [1usize, 2, 4, 8] {
        let mut cluster = SsdCluster::new(drives, SmartSsdConfig::default());
        let scan = cluster
            .parallel_scan(w.samples, w.bytes_per_sample)
            .expect("fault-free cluster");
        let chunk =
            KernelProfile::max_chunk_for(&SmartSsdConfig::default().fpga, w.classes).min(457);
        let profile = KernelProfile {
            samples: w.samples,
            forward_macs_per_sample: (w.feature_dim * w.classes) as u64,
            proxy_dim: w.classes,
            chunk,
            k_per_chunk: 128,
        };
        let select = cluster.parallel_select(&profile).expect("chunk fits");
        // GreeDi round 1→2: each drive ships its local picks (its share of
        // the subset), the merged set then goes to the GPU.
        let gather = cluster
            .gather_selections(subset, w.bytes_per_sample)
            .expect("fault-free cluster");
        let feedback = cluster
            .broadcast_feedback(25_600_000 / 4)
            .expect("fault-free cluster");
        let total = scan + select + gather + feedback;
        let speedup = *baseline.get_or_insert(total) / total;
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("dataset", spec.name)
                    .u64_field("drives", drives as u64)
                    .f64_field("scan_s", scan)
                    .f64_field("select_s", select)
                    .f64_field("gather_s", gather)
                    .f64_field("feedback_s", feedback)
                    .f64_field("total_s", total)
                    .f64_field("speedup", speedup)
                    .f64_field("energy_j", cluster.energy_joules())
                    .finish()
            );
        } else {
            println!(
                "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>11.2}x {:>10.1}",
                drives,
                scan,
                select,
                gather,
                total,
                speedup,
                cluster.energy_joules()
            );
        }
    }
    if !json {
        rule(78);
        println!("Scan and select scale with drives; gather/feedback share the host link.");
    }
}
