//! Table 3: ablation of NeSSA's optimizations vs CRAIG and K-Centers at
//! 10/30/50 % subsets on the CIFAR-10 stand-in.
//!
//! Columns follow the paper: Vanilla (NeSSA without subset biasing or
//! partitioning), SB, PA, SB+PA, CRAIG, K-Centers, and Goal (full data).
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin table3`.
//! Pass `--json` to emit one JSON object per subset row instead of the
//! human-readable table.

use nessa_bench::{rule, run_scaled, scaled_dataset, EPOCHS, SEED};
use nessa_core::{NessaConfig, Policy};
use nessa_data::DatasetSpec;
use nessa_telemetry::json::JsonObject;

fn nessa_policy(fraction: f32, sb: bool, pa: bool) -> Policy {
    let cfg = NessaConfig::new(fraction, EPOCHS)
        .with_subset_biasing(sb)
        .with_partitioning(pa);
    Policy::Nessa(cfg)
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let spec = DatasetSpec::by_name("CIFAR-10").expect("catalog entry");
    let (train, test) = scaled_dataset(&spec, SEED);
    if !json {
        println!(
            "Table 3: optimization ablation on {} stand-in ({} train, {EPOCHS} epochs)",
            spec.name,
            train.len()
        );
    }
    let goal = run_scaled(&Policy::Goal, &train, &test, EPOCHS, SEED);
    if !json {
        rule(88);
        println!(
            "{:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
            "Subset%", "Vanilla", "SB", "PA", "SB+PA", "CRAIG", "K-Centers", "Goal"
        );
        rule(88);
    }
    for fraction in [0.10f32, 0.30, 0.50] {
        let row: Vec<f32> = [
            nessa_policy(fraction, false, false),
            nessa_policy(fraction, true, false),
            nessa_policy(fraction, false, true),
            nessa_policy(fraction, true, true),
            Policy::Craig { fraction },
            Policy::KCenters { fraction },
        ]
        .iter()
        .map(|p| 100.0 * run_scaled(p, &train, &test, EPOCHS, SEED).best_accuracy())
        .collect();
        if json {
            println!(
                "{}",
                JsonObject::new()
                    .str_field("dataset", spec.name)
                    .f64_field("subset_pct", (100.0 * fraction) as f64)
                    .f64_field("vanilla_acc", row[0] as f64)
                    .f64_field("sb_acc", row[1] as f64)
                    .f64_field("pa_acc", row[2] as f64)
                    .f64_field("sb_pa_acc", row[3] as f64)
                    .f64_field("craig_acc", row[4] as f64)
                    .f64_field("kcenters_acc", row[5] as f64)
                    .f64_field("goal_acc", (100.0 * goal.best_accuracy()) as f64)
                    .finish()
            );
        } else {
            println!(
                "{:>8.0} {:>10.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>10.2} {:>8.2}",
                100.0 * fraction,
                row[0],
                row[1],
                row[2],
                row[3],
                row[4],
                row[5],
                100.0 * goal.best_accuracy()
            );
        }
    }
    if !json {
        rule(88);
        println!("Paper row at 10%:  82.76  87.61  83.56  87.75  87.07  65.72  92.44");
        println!("Paper row at 30%:  89.51  90.42  90.68  90.49  89.12  88.49  92.44");
        println!("Paper row at 50%:  90.59  91.89  91.81  91.92  90.32  90.14  92.44");
    }
}
