//! Figure 6: data-transfer throughput between the FPGA and the on-board
//! SSD versus per-image size (batch 128, average of reads/writes).
//!
//! Paper reference points: CIFAR-10 (3 KB images) 1.46 GB/s;
//! ImageNet-100 (126 KB images) 2.28 GB/s.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin fig6`.

use nessa_bench::rule;
use nessa_data::DatasetSpec;
use nessa_smartssd::LinkModel;

fn main() {
    let p2p = LinkModel::p2p();
    let batch = 128u64;
    println!("Figure 6: FPGA <-> on-board SSD transfer throughput (batch {batch})");
    rule(56);
    println!(
        "{:<16} {:>10} {:>14} {:>12}",
        "Dataset", "KB/image", "Batch (KB)", "GB/s"
    );
    rule(56);
    let mut specs = vec![DatasetSpec::mnist()];
    specs.extend(DatasetSpec::table1());
    for spec in &specs {
        let bytes = spec.bytes_per_image as u64;
        let gbps = p2p.effective_bytes_per_s(batch, bytes) / 1e9;
        println!(
            "{:<16} {:>10.1} {:>14.0} {:>12.2}",
            spec.name,
            bytes as f64 / 1000.0,
            (batch * bytes) as f64 / 1000.0,
            gbps
        );
    }
    rule(56);
    println!("Paper: CIFAR-10 1.46 GB/s, ImageNet-100 2.28 GB/s (3 GB/s theoretical).");
}
