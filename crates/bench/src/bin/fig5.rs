//! Figure 5: test accuracy of NeSSA and full-data training over the
//! training process, all six datasets.
//!
//! Prints each run's accuracy series (sampled every 2 epochs) plus the
//! convergence comparison the paper highlights: NeSSA is closer to its
//! final accuracy within the first 30 (rescaled: 6) epochs.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin fig5`.

use nessa_bench::{rule, run_scaled, scaled_dataset, EPOCHS, SEED};
use nessa_core::{NessaConfig, Policy, RunReport};
use nessa_data::DatasetSpec;

fn series(report: &RunReport) -> String {
    report
        .accuracy_curve()
        .iter()
        .step_by(2)
        .map(|a| format!("{:5.1}", 100.0 * a))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    println!("Figure 5: accuracy over training (epochs 0,2,4,... of {EPOCHS})");
    // Paper: "within the first 30 epochs of 200"; rescaled to our run.
    let early = (30 * EPOCHS / 200).max(1);
    rule(100);
    for spec in DatasetSpec::table1() {
        let paper = spec.paper.expect("table 2 row");
        let (train, test) = scaled_dataset(&spec, SEED);
        let goal = run_scaled(&Policy::Goal, &train, &test, EPOCHS, SEED);
        let cfg = NessaConfig::new(paper.subset_pct / 100.0, EPOCHS);
        let nessa = run_scaled(&Policy::Nessa(cfg), &train, &test, EPOCHS, SEED);
        println!("{}:", spec.name);
        println!(
            "  full  : {}  {}",
            nessa_bench::sparkline(&goal.accuracy_curve()),
            series(&goal)
        );
        println!(
            "  nessa : {}  {}",
            nessa_bench::sparkline(&nessa.accuracy_curve()),
            series(&nessa)
        );
        let g_early = goal.epochs[early].test_acc / goal.best_accuracy().max(1e-6);
        let n_early = nessa.epochs[early].test_acc / nessa.best_accuracy().max(1e-6);
        println!(
            "  fraction of final accuracy reached by epoch {early}: full {:.2}, nessa {:.2}",
            g_early, n_early
        );
        // Compute-normalized view: accuracy per gradient sample processed.
        let frac = paper.subset_pct as f64 / 100.0;
        let budget = |r: &RunReport, samples_frac: f64| {
            // Accuracy once the run has processed 30 % of the full-data
            // run's total gradient samples.
            let total = goal.epochs.len() as f64;
            let target_epochs = (0.3 * total / samples_frac).min(total - 1.0);
            r.epochs[target_epochs as usize].test_acc
        };
        println!(
            "  accuracy at 30% of the full-data gradient budget: full {:.1}%, nessa {:.1}%",
            100.0 * budget(&goal, 1.0),
            100.0 * budget(&nessa, frac),
        );
    }
    rule(100);
    println!("Paper: the NeSSA series sits above the full-data series early in training.");
    println!("Measured: per-epoch the full-data series leads early (a scaled-regime");
    println!("artifact: at 1/25th dataset scale a subset epoch has proportionally fewer");
    println!("SGD steps); per gradient-sample processed, NeSSA leads — see the");
    println!("compute-normalized line under each dataset and EXPERIMENTS.md.");
}
