//! §4.3: end-to-end training speed-up of NeSSA across all datasets,
//! composing the per-epoch time model with each run's convergence
//! behaviour (NeSSA converges in fewer effective epochs; paper Figure 5).
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin speedup`.

use nessa_bench::rule;
use nessa_core::timing::{craig_cpu_epoch, goal_epoch, kcenters_cpu_epoch, nessa_epoch, Workload};
use nessa_data::DatasetSpec;
use nessa_nn::cost::DeviceSpec;

/// Convergence credit: the paper claims NeSSA needs fewer epochs to reach
/// the near-final accuracy band (Figure 5). Our measured fig5 runs show
/// *parity* — both NeSSA and full-data training converge right after the
/// first LR drop at reproduction scale (see EXPERIMENTS.md), so no credit
/// is taken and the speed-ups below are pure per-epoch ratios.
const NESSA_EPOCH_RATIO: f64 = 1.0;

fn main() {
    let gpu = DeviceSpec::v100();
    println!("Section 4.3: end-to-end speed-up of NeSSA ({})", gpu.name);
    rule(76);
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "Dataset", "Subset%", "vs Full", "vs CRAIG", "vs K-Centers", "NeSSA s/ep"
    );
    rule(76);
    let (mut s_full, mut s_craig, mut s_kc) = (0.0, 0.0, 0.0);
    let specs = DatasetSpec::table1();
    for spec in &specs {
        let fraction = spec.paper.expect("table 2 row").subset_pct as f64 / 100.0;
        let w = Workload::from_spec(spec);
        let nessa = nessa_epoch(&w, &gpu, fraction).total_s() * NESSA_EPOCH_RATIO;
        let full = goal_epoch(&w, &gpu).total_s();
        let craig = craig_cpu_epoch(&w, &gpu, fraction).total_s();
        let kc = kcenters_cpu_epoch(&w, &gpu, fraction).total_s();
        let (vf, vc, vk) = (full / nessa, craig / nessa, kc / nessa);
        s_full += vf;
        s_craig += vc;
        s_kc += vk;
        println!(
            "{:<14} {:>8.0} {:>11.2}x {:>11.2}x {:>11.2}x {:>12.2}",
            spec.name,
            100.0 * fraction,
            vf,
            vc,
            vk,
            nessa
        );
    }
    rule(76);
    let n = specs.len() as f64;
    println!(
        "{:<14} {:>8} {:>11.2}x {:>11.2}x {:>11.2}x",
        "Average",
        "",
        s_full / n,
        s_craig / n,
        s_kc / n
    );
    println!("Paper averages: 5.37x vs full, 4.3x vs CRAIG, 8.1x vs K-Centers.");
}
