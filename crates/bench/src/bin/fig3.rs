//! Figure 3: system setup — the paper's architecture diagram, printed
//! with the concrete parameters this reproduction simulates, plus a live
//! one-epoch timeline from the device.
//!
//! Regenerate with `cargo run --release -p nessa-bench --bin fig3`.

use nessa_smartssd::fpga::KernelProfile;
use nessa_smartssd::{SmartSsd, SmartSsdConfig};

fn main() {
    let config = SmartSsdConfig::default();
    println!("Figure 3: system setup (simulated parameters)");
    println!();
    println!("  +----------------------- SmartSSD (U.2) ------------------------+");
    println!(
        "  |  NAND flash: {:.2} TB, {} ch x {} dies, {} KB pages, tR {} us     |",
        config.nand.capacity_bytes as f64 / 1e12,
        config.nand.channels,
        config.nand.dies_per_channel,
        config.nand.page_bytes / 1024,
        (config.nand.t_r_secs * 1e6) as u64
    );
    println!(
        "  |      | P2P PCIe: peak {:.1} GB/s (Fig. 6 saturation)              |",
        config.p2p.peak_bytes_per_s / 1e9
    );
    println!("  |      v                                                         |");
    println!(
        "  |  FPGA (KU15P): {} MHz, {} DSP ({} MACs), {:.2} MB on-chip      |",
        (config.fpga.clock_hz / 1e6) as u64,
        config.fpga.dsp_slices,
        config.fpga.mac_units,
        config.fpga.onchip_bytes as f64 / 1e6
    );
    println!("  |    selection kernel: quantized forward -> gradient proxies    |");
    println!("  |    -> per-class facility location (chunked to fit BRAM)       |");
    println!("  +------+-------------------------------^------------------------+");
    println!("         | subset (15-38%)               | int8 weights (feedback)");
    println!(
        "         v {:.1} GB/s                      |",
        config.host.peak_bytes_per_s / 1e9
    );
    println!("  +------------------------ host + GPU ---------------------------+");
    println!("  |  weighted-subset SGD (Nesterov 0.9, wd 5e-4, LR 0.1 / 5)      |");
    println!("  |  losses -> subset biasing; weights -> int8 -> FPGA            |");
    println!("  +----------------------------------------------------------------+");
    println!();
    // A live one-epoch timeline at CIFAR-10 scale.
    let mut dev = SmartSsd::new(config);
    dev.install_dataset(50_000, 3_000)
        .expect("fault-free device");
    dev.read_records_to_fpga(50_000, 3_000)
        .expect("fault-free device");
    let profile = KernelProfile {
        samples: 50_000,
        forward_macs_per_sample: 640,
        proxy_dim: 10,
        chunk: 457,
        k_per_chunk: 128,
    };
    dev.run_selection(&profile).expect("chunk fits");
    dev.send_subset_to_host(14_000, 3_000)
        .expect("fault-free device");
    dev.receive_feedback(272_000 / 4)
        .expect("fault-free device");
    println!("One install + one epoch at CIFAR-10 scale:");
    print!("{}", dev.trace());
    println!("{}", dev.energy());
}
