//! Maintenance probe: difficulty-ratio sweep per dataset.
//! Run with `cargo run --release -p nessa-bench --bin probe`.
use nessa_bench::{run_scaled, EPOCHS, SEED};
use nessa_core::Policy;
use nessa_data::DatasetSpec;

fn main() {
    let ratios: &[(&str, &[f32])] = &[
        ("CIFAR-10", &[1.1, 1.3]),
        ("CINIC-10", &[1.5, 1.9]),
        ("CIFAR-100", &[1.5, 1.9, 2.3]),
        ("TinyImageNet", &[1.7, 2.1, 2.5]),
        ("ImageNet-100", &[1.2, 1.5]),
    ];
    for (name, rs) in ratios {
        let spec = DatasetSpec::by_name(name).unwrap();
        let target = spec.paper.unwrap().all_data_acc;
        for &r in rs.iter() {
            let mut cfg = spec.scaled_config(SEED);
            cfg.cluster_std = cfg.class_sep * r;
            let (tr, te) = cfg.generate();
            let g = run_scaled(&Policy::Goal, &tr, &te, EPOCHS, SEED);
            println!(
                "{name:<14} ratio {r:.1} -> goal {:>6.2} (target {target:.2})",
                100.0 * g.best_accuracy()
            );
        }
    }
}
