//! Criterion microbenchmarks of the facility-location maximizers —
//! the kernels whose cost the FPGA model prices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nessa_select::facility::{maximize, GreedyVariant, SimilarityMatrix};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;
use std::hint::black_box;

fn clustered(n: usize, d: usize, seed: u64) -> Tensor {
    let mut rng = Rng64::new(seed);
    let centres = Tensor::randn(&[8, d], 0.0, 3.0, &mut rng);
    let mut rows = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = centres.row(i % 8);
        for &v in c {
            rows.push(v + rng.normal(0.0, 0.7));
        }
    }
    Tensor::from_vec(rows, &[n, d])
}

fn bench_greedy_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("facility_greedy");
    for &n in &[128usize, 512] {
        let feats = clustered(n, 10, 7);
        let sim = SimilarityMatrix::from_features(&feats);
        let k = n / 8;
        for (name, variant) in [
            ("naive", GreedyVariant::Naive),
            ("lazy", GreedyVariant::Lazy),
            ("stochastic", GreedyVariant::Stochastic { epsilon: 0.1 }),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &sim, |b, sim| {
                b.iter(|| {
                    let mut rng = Rng64::new(0);
                    black_box(maximize(sim, k, variant, &mut rng).unwrap())
                })
            });
        }
    }
    group.finish();
}

fn bench_similarity_build(c: &mut Criterion) {
    let feats = clustered(512, 10, 9);
    c.bench_function("similarity_matrix_512x10", |b| {
        b.iter(|| black_box(SimilarityMatrix::from_features(black_box(&feats))))
    });
}

criterion_group!(benches, bench_greedy_variants, bench_similarity_build);
criterion_main!(benches);
