//! Criterion benchmark of whole NeSSA pipeline epochs at reproduction
//! scale, against the full-data trainer on the same dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use nessa_core::{run_policy, NessaConfig, Policy};
use nessa_data::SynthConfig;
use nessa_nn::models::mlp;
use nessa_tensor::rng::Rng64;
use std::hint::black_box;

fn data() -> (nessa_data::Dataset, nessa_data::Dataset) {
    SynthConfig {
        train: 500,
        test: 100,
        dim: 16,
        classes: 5,
        ..SynthConfig::default()
    }
    .generate()
}

fn bench_policies(c: &mut Criterion) {
    let (train, test) = data();
    let builder = |rng: &mut Rng64| mlp(&[16, 32, 5], rng);
    let mut group = c.benchmark_group("three_epochs");
    group.sample_size(10);
    group.bench_function("nessa_30pct", |b| {
        b.iter(|| {
            black_box(
                run_policy(
                    &Policy::Nessa(NessaConfig::new(0.3, 3)),
                    &train,
                    &test,
                    3,
                    32,
                    0,
                    &builder,
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("full_data", |b| {
        b.iter(|| black_box(run_policy(&Policy::Goal, &train, &test, 3, 32, 0, &builder).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
