//! Criterion microbenchmarks of the quantized feedback loop: snapshot,
//! apply, and the int8 matmul kernel vs its f32 counterpart.

use criterion::{criterion_group, criterion_main, Criterion};
use nessa_nn::models::mlp;
use nessa_quant::{QuantizedModel, QuantizedTensor};
use nessa_tensor::rng::Rng64;
use nessa_tensor::Tensor;
use std::hint::black_box;

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let mut rng = Rng64::new(0);
    let mut net = mlp(&[64, 160, 100], &mut rng);
    c.bench_function("quantize_model_snapshot", |b| {
        b.iter(|| black_box(QuantizedModel::from_network(black_box(&mut net))))
    });
    let snap = QuantizedModel::from_network(&mut net);
    let mut selector = mlp(&[64, 160, 100], &mut rng);
    c.bench_function("apply_snapshot_to_selector", |b| {
        b.iter(|| snap.apply_to(black_box(&mut selector)))
    });
}

fn bench_qmatmul_vs_f32(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let a = Tensor::rand_uniform(&[128, 64], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform(&[100, 64], -1.0, 1.0, &mut rng);
    let qa = QuantizedTensor::quantize(&a);
    let qw = QuantizedTensor::quantize(&w);
    c.bench_function("matmul_f32_128x64x100", |b| {
        b.iter(|| black_box(a.matmul_transb(black_box(&w))))
    });
    c.bench_function("qmatmul_int8_128x64x100", |b| {
        b.iter(|| black_box(qa.qmatmul_transb(black_box(&qw))))
    });
}

criterion_group!(benches, bench_snapshot_roundtrip, bench_qmatmul_vs_f32);
criterion_main!(benches);
