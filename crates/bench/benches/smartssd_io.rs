//! Criterion microbenchmarks of the SmartSSD simulator itself (the
//! simulator must be cheap enough to sit inside every training epoch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nessa_smartssd::fpga::KernelProfile;
use nessa_smartssd::{SmartSsd, SmartSsdConfig};
use std::hint::black_box;

fn bench_device_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("smartssd_phases");
    for &records in &[1_000u64, 50_000] {
        group.bench_with_input(
            BenchmarkId::new("read_records_to_fpga", records),
            &records,
            |b, &records| {
                b.iter(|| {
                    let mut dev = SmartSsd::new(SmartSsdConfig::default());
                    black_box(dev.read_records_to_fpga(records, 3000))
                })
            },
        );
    }
    group.finish();
}

fn bench_kernel_pricing(c: &mut Criterion) {
    let profile = KernelProfile {
        samples: 50_000,
        forward_macs_per_sample: 640,
        proxy_dim: 10,
        chunk: 457,
        k_per_chunk: 128,
    };
    c.bench_function("kernel_profile_pricing", |b| {
        b.iter(|| {
            let mut dev = SmartSsd::new(SmartSsdConfig::default());
            black_box(dev.run_selection(black_box(&profile)).unwrap())
        })
    });
}

criterion_group!(benches, bench_device_phases, bench_kernel_pricing);
criterion_main!(benches);
