//! End-to-end checks of the `trace` binary: report/export/summary/diff
//! over synthetic telemetry streams, including the exit-code contract of
//! the regression gate.

use nessa_telemetry::JsonValue;
use std::path::PathBuf;
use std::process::Command;

const TRACE_BIN: &str = env!("CARGO_BIN_EXE_trace");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nessa-trace-cli-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A two-epoch stream whose per-epoch simulated seconds are `scale`×1.0.
fn synth_stream(scale: f64) -> String {
    let mut out = String::new();
    let mut id = 1u64;
    for epoch in 0..2 {
        let eid = id;
        id += 1;
        let sim = scale;
        for (name, parent, sim_s) in [
            ("select", Some(eid), 0.6 * sim),
            ("train", Some(eid), 0.0),
            ("epoch", None, sim),
        ] {
            let span_id = if name == "epoch" {
                eid
            } else {
                let s = id;
                id += 1;
                s
            };
            out.push_str(&format!(
                "{{\"type\":\"span\",\"id\":{span_id},\"parent\":{},\"name\":\"{name}\",\"start_s\":{},\"wall_s\":0.25,\"sim_s\":{sim_s},\"attrs\":{{\"epoch\":{epoch}}}}}\n",
                parent.unwrap_or(0),
                epoch as f64,
            ));
        }
    }
    out.push_str("{\"type\":\"device\",\"phase\":\"scan\",\"start_s\":0,\"duration_s\":0.5,\"bytes\":2048}\n");
    out.push_str("{\"type\":\"counter\",\"name\":\"train.batches\",\"value\":8}\n");
    out
}

#[test]
fn report_and_export_work_end_to_end() {
    let dir = temp_dir("export");
    let run = dir.join("run.jsonl");
    std::fs::write(&run, synth_stream(1.0)).unwrap();

    let report = Command::new(TRACE_BIN)
        .arg("report")
        .arg(&run)
        .output()
        .unwrap();
    assert!(report.status.success(), "{report:?}");
    let text = String::from_utf8(report.stdout).unwrap();
    assert!(text.contains("trace report (2 epochs)"), "{text}");
    assert!(text.contains("critical path"), "{text}");

    let out = dir.join("run.trace.json");
    let export = Command::new(TRACE_BIN)
        .args([
            "export",
            run.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(export.status.success(), "{export:?}");
    // The artifact must be a JSON array of complete ("ph":"X") events
    // with pid/tid/ts/dur on every event.
    let chrome = std::fs::read_to_string(&out).unwrap();
    let events = JsonValue::parse(&chrome).unwrap();
    let events = events.as_arr().expect("top-level array");
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
        for key in ["pid", "tid", "ts", "dur"] {
            assert!(ev.get(key).is_some(), "missing {key}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_passes_on_identical_runs_and_fails_on_regression() {
    let dir = temp_dir("diff");
    let base = dir.join("base.jsonl");
    let same = dir.join("same.jsonl");
    let slow = dir.join("slow.jsonl");
    std::fs::write(&base, synth_stream(1.0)).unwrap();
    std::fs::write(&same, synth_stream(1.0)).unwrap();
    // 50 % slower epochs: far past the default 10 % tolerance.
    std::fs::write(&slow, synth_stream(1.5)).unwrap();

    let ok = Command::new(TRACE_BIN)
        .args(["diff", base.to_str().unwrap(), same.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(ok.status.success(), "{ok:?}");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("PASS"));

    let bench = dir.join("BENCH_pipeline.json");
    let bad = Command::new(TRACE_BIN)
        .args([
            "diff",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--bench-out",
            bench.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");
    assert!(String::from_utf8_lossy(&bad.stdout).contains("FAIL"));
    // The artifact is written even on failure and records the verdict.
    let artifact = JsonValue::parse(&std::fs::read_to_string(&bench).unwrap()).unwrap();
    assert_eq!(
        artifact.get("type").unwrap().as_str(),
        Some("nessa-bench-pipeline")
    );
    assert_eq!(artifact.get("passed"), Some(&JsonValue::Bool(false)));

    // A tolerance wide enough for the injected 50 % lets it pass again.
    let tolerant = Command::new(TRACE_BIN)
        .args([
            "diff",
            base.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--max-regress",
            "60",
        ])
        .output()
        .unwrap();
    assert!(tolerant.status.success(), "{tolerant:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_accepts_condensed_summaries() {
    let dir = temp_dir("summary");
    let run = dir.join("run.jsonl");
    let summary = dir.join("baseline.json");
    std::fs::write(&run, synth_stream(1.0)).unwrap();

    let condense = Command::new(TRACE_BIN)
        .args([
            "summary",
            run.to_str().unwrap(),
            "--out",
            summary.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(condense.status.success(), "{condense:?}");
    let v = JsonValue::parse(&std::fs::read_to_string(&summary).unwrap()).unwrap();
    assert_eq!(v.get("type").unwrap().as_str(), Some("nessa-run-summary"));

    // Summary-vs-stream comparison: identical run, so it passes.
    let ok = Command::new(TRACE_BIN)
        .args(["diff", summary.to_str().unwrap(), run.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(ok.status.success(), "{ok:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_input_is_a_usage_error_not_a_gate_failure() {
    let dir = temp_dir("badinput");
    let bad = dir.join("bad.jsonl");
    std::fs::write(&bad, "{\"type\":\"span\", truncated").unwrap();
    let out = Command::new(TRACE_BIN)
        .arg("report")
        .arg(&bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let none = Command::new(TRACE_BIN).output().unwrap();
    assert_eq!(none.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
